package query

import (
	"fmt"
	"strings"

	"bfcbo/internal/storage"
)

// CmpOp is a comparison operator for scalar predicates.
type CmpOp int

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Predicate is an executable single-relation filter. Implementations carry
// enough structure for the estimator (internal/stats) to derive a
// selectivity from catalog statistics, and evaluate themselves row-at-a-time
// against storage for execution and for ground-truth cardinality checks.
type Predicate interface {
	// Eval reports whether row i of the table satisfies the predicate.
	Eval(t *storage.Table, row int) bool
	// String renders a SQL-ish form for EXPLAIN output.
	String() string
}

// CmpInt compares an int64 column against a constant (dates included).
type CmpInt struct {
	Col string
	Op  CmpOp
	Val int64
}

func (p CmpInt) Eval(t *storage.Table, row int) bool {
	v := t.MustColumn(p.Col).Ints[row]
	return cmpHolds(p.Op, v == p.Val, v < p.Val)
}

func (p CmpInt) String() string { return fmt.Sprintf("%s %s %d", p.Col, p.Op, p.Val) }

// CmpFloat compares a float64 column against a constant.
type CmpFloat struct {
	Col string
	Op  CmpOp
	Val float64
}

func (p CmpFloat) Eval(t *storage.Table, row int) bool {
	v := t.MustColumn(p.Col).Floats[row]
	return cmpHolds(p.Op, v == p.Val, v < p.Val)
}

func (p CmpFloat) String() string { return fmt.Sprintf("%s %s %g", p.Col, p.Op, p.Val) }

// CmpCols compares two int64 columns of the same relation (e.g. Q12's
// l_commitdate < l_receiptdate).
type CmpCols struct {
	Col1 string
	Op   CmpOp
	Col2 string
}

func (p CmpCols) Eval(t *storage.Table, row int) bool {
	a := t.MustColumn(p.Col1).Ints[row]
	b := t.MustColumn(p.Col2).Ints[row]
	return cmpHolds(p.Op, a == b, a < b)
}

func (p CmpCols) String() string { return fmt.Sprintf("%s %s %s", p.Col1, p.Op, p.Col2) }

// BetweenInt keeps rows with Lo <= col <= Hi.
type BetweenInt struct {
	Col    string
	Lo, Hi int64
}

func (p BetweenInt) Eval(t *storage.Table, row int) bool {
	v := t.MustColumn(p.Col).Ints[row]
	return v >= p.Lo && v <= p.Hi
}

func (p BetweenInt) String() string { return fmt.Sprintf("%s between %d and %d", p.Col, p.Lo, p.Hi) }

// BetweenFloat keeps rows with Lo <= col <= Hi.
type BetweenFloat struct {
	Col    string
	Lo, Hi float64
}

func (p BetweenFloat) Eval(t *storage.Table, row int) bool {
	v := t.MustColumn(p.Col).Floats[row]
	return v >= p.Lo && v <= p.Hi
}

func (p BetweenFloat) String() string {
	return fmt.Sprintf("%s between %g and %g", p.Col, p.Lo, p.Hi)
}

// InInt keeps rows whose int64 column is in Vals.
type InInt struct {
	Col  string
	Vals []int64
}

func (p InInt) Eval(t *storage.Table, row int) bool {
	v := t.MustColumn(p.Col).Ints[row]
	for _, x := range p.Vals {
		if v == x {
			return true
		}
	}
	return false
}

func (p InInt) String() string { return fmt.Sprintf("%s in %v", p.Col, p.Vals) }

// StrEq keeps rows whose string column equals Val.
type StrEq struct {
	Col string
	Val string
}

func (p StrEq) Eval(t *storage.Table, row int) bool {
	return t.MustColumn(p.Col).Strings[row] == p.Val
}

func (p StrEq) String() string { return fmt.Sprintf("%s = '%s'", p.Col, p.Val) }

// StrNE keeps rows whose string column differs from Val.
type StrNE struct {
	Col string
	Val string
}

func (p StrNE) Eval(t *storage.Table, row int) bool {
	return t.MustColumn(p.Col).Strings[row] != p.Val
}

func (p StrNE) String() string { return fmt.Sprintf("%s <> '%s'", p.Col, p.Val) }

// StrIn keeps rows whose string column is one of Vals.
type StrIn struct {
	Col  string
	Vals []string
}

func (p StrIn) Eval(t *storage.Table, row int) bool {
	v := t.MustColumn(p.Col).Strings[row]
	for _, x := range p.Vals {
		if v == x {
			return true
		}
	}
	return false
}

func (p StrIn) String() string {
	return fmt.Sprintf("%s in ('%s')", p.Col, strings.Join(p.Vals, "','"))
}

// StrPrefix implements LIKE 'prefix%'.
type StrPrefix struct {
	Col    string
	Prefix string
}

func (p StrPrefix) Eval(t *storage.Table, row int) bool {
	return strings.HasPrefix(t.MustColumn(p.Col).Strings[row], p.Prefix)
}

func (p StrPrefix) String() string { return fmt.Sprintf("%s like '%s%%'", p.Col, p.Prefix) }

// StrContains implements LIKE '%a%b%': the substrings must appear in order.
type StrContains struct {
	Col  string
	Subs []string
}

func (p StrContains) Eval(t *storage.Table, row int) bool {
	s := t.MustColumn(p.Col).Strings[row]
	for _, sub := range p.Subs {
		i := strings.Index(s, sub)
		if i < 0 {
			return false
		}
		s = s[i+len(sub):]
	}
	return true
}

func (p StrContains) String() string {
	return fmt.Sprintf("%s like '%%%s%%'", p.Col, strings.Join(p.Subs, "%"))
}

// Not negates a predicate.
type Not struct{ P Predicate }

func (p Not) Eval(t *storage.Table, row int) bool { return !p.P.Eval(t, row) }
func (p Not) String() string                      { return "not (" + p.P.String() + ")" }

// And is a conjunction of predicates.
type And struct{ Ps []Predicate }

func (p And) Eval(t *storage.Table, row int) bool {
	for _, q := range p.Ps {
		if !q.Eval(t, row) {
			return false
		}
	}
	return true
}

func (p And) String() string { return joinPreds(p.Ps, " and ") }

// Or is a disjunction of predicates.
type Or struct{ Ps []Predicate }

func (p Or) Eval(t *storage.Table, row int) bool {
	for _, q := range p.Ps {
		if q.Eval(t, row) {
			return true
		}
	}
	return false
}

func (p Or) String() string { return joinPreds(p.Ps, " or ") }

func joinPreds(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, q := range ps {
		parts[i] = "(" + q.String() + ")"
	}
	return strings.Join(parts, sep)
}

func cmpHolds(op CmpOp, eq, lt bool) bool {
	switch op {
	case EQ:
		return eq
	case NE:
		return !eq
	case LT:
		return lt
	case LE:
		return lt || eq
	case GT:
		return !lt && !eq
	case GE:
		return !lt
	default:
		return false
	}
}
