package query

import (
	"math/rand"
	"testing"
)

// Steady-state filter-kernel benchmarks. CI gates on -benchmem reporting
// 0 allocs/op for every BenchmarkEvalBatch*: the kernels, the adaptive
// chain (including its periodic reorder), and the selection-vector
// compaction must all run allocation-free once compiled.

const benchRows = 8192

func benchChain(b *testing.B, p Predicate) (*Chain, []int32, []int32) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	tbl := kernelTable(b, rng, benchRows)
	ks, err := Compile(p, tbl)
	if err != nil {
		b.Fatal(err)
	}
	template := make([]int32, benchRows)
	for i := range template {
		template[i] = int32(i)
	}
	return NewChain(ks), template, make([]int32, benchRows)
}

func runEvalBatch(b *testing.B, p Predicate) {
	chain, template, sel := benchChain(b, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(sel, template)
		chain.EvalBatch(sel[:benchRows])
	}
	b.SetBytes(benchRows * 8)
}

func BenchmarkEvalBatchCmpInt(b *testing.B) {
	runEvalBatch(b, CmpInt{Col: "a", Op: LE, Val: 25})
}

func BenchmarkEvalBatchQ6Shape(b *testing.B) {
	// The Q6 filter shape: int range + float between + float compare.
	runEvalBatch(b, And{Ps: []Predicate{
		BetweenInt{Col: "a", Lo: 10, Hi: 30},
		BetweenFloat{Col: "f", Lo: 0.05, Hi: 0.07},
		CmpFloat{Col: "f", Op: LT, Val: 0.19},
	}})
}

func BenchmarkEvalBatchDictString(b *testing.B) {
	runEvalBatch(b, And{Ps: []Predicate{
		StrIn{Col: "s", Vals: []string{"alpha", "gamma"}},
		StrContains{Col: "s", Subs: []string{"a"}},
	}})
}

func BenchmarkEvalBatchNested(b *testing.B) {
	runEvalBatch(b, And{Ps: []Predicate{
		Not{P: StrPrefix{Col: "s", Prefix: "green"}},
		Or{Ps: []Predicate{
			CmpInt{Col: "a", Op: LT, Val: 10},
			CmpCols{Col1: "a", Op: GT, Col2: "b"},
		}},
		InInt{Col: "b", Vals: []int64{3, 9, 27, 41}},
	}})
}
