// Command bfcbo plans and executes a query over a generated TPC-H dataset,
// printing the physical plan (with Bloom filter annotations), the join
// order, and the observed latencies. Compare modes with -mode.
//
// Examples:
//
//	bfcbo -q 12 -mode bfcbo
//	bfcbo -q 12 -mode bfpost
//	bfcbo -sql "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL','SHIP')"
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"bfcbo"
	"bfcbo/internal/mem"
	"bfcbo/internal/obs"
)

func main() {
	var (
		sf        = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed      = flag.Uint64("seed", 0, "data generation seed (0 = default)")
		dop       = flag.Int("dop", 8, "degree of parallelism")
		qnum      = flag.Int("q", 0, "TPC-H query number (1-22)")
		sql       = flag.String("sql", "", "SQL text (overrides -q)")
		modeS     = flag.String("mode", "bfcbo", "optimizer mode: nobf | bfpost | bfcbo | naive")
		budget    = flag.String("mem-budget", "", `executor memory budget, e.g. "64MB" (empty = unlimited); joins and sorts over budget spill to temp files`)
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 = none); expiry cancels the run mid-pipeline")
		streams   = flag.Int("streams", 1, "run the query this many times concurrently through the engine scheduler")
		maxConc   = flag.Int("max-concurrent", 0, "admission cap on concurrent queries (0 = unlimited)")
		obsAddr   = flag.String("obs-listen", "", `serve observability endpoints (/metrics, /query, /debug/queries[/live|/kill], /debug/trace/<id>, /debug/workload, /debug/pprof/) on this address, e.g. ":8080"; the process keeps serving after the query finishes until Ctrl-C, then shuts the server down gracefully`)
		traceOut  = flag.String("trace-out", "", "write the run's query-lifecycle trace(s) as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
		faultSpec = flag.String("faults", "", `deterministic fault-injection spec, e.g. "seed=42,spill.write=0.01,exec.panic=0.005,spill.diskfull=64MB" (empty = injector off)`)
		retries   = flag.Int("retries", 0, "retry transiently failed queries (shed/queue-timeout/injected) up to this many times with exponential backoff")
		shedWait  = flag.Duration("shed-queue-p95", 0, "shed new admissions while queue-wait p95 exceeds this (0 = signal off)")
		shedFree  = flag.Float64("shed-min-free", 0, "shed new admissions while the memory broker's free fraction is below this (0 = signal off)")
	)
	flag.Parse()
	if err := run(runConfig{
		sf: *sf, seed: *seed, dop: *dop, qnum: *qnum, sql: *sql, modeS: *modeS,
		budget: *budget, timeout: *timeout, streams: *streams, maxConc: *maxConc,
		obsAddr: *obsAddr, traceOut: *traceOut, faults: *faultSpec,
		retries: *retries, shedWait: *shedWait, shedFree: *shedFree,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bfcbo:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flags; the list outgrew a readable
// positional signature.
type runConfig struct {
	sf                float64
	seed              uint64
	dop, qnum         int
	sql, modeS        string
	budget            string
	timeout           time.Duration
	streams, maxConc  int
	obsAddr, traceOut string
	faults            string
	retries           int
	shedWait          time.Duration
	shedFree          float64
}

func run(rc runConfig) error {
	sf, seed, dop, qnum := rc.sf, rc.seed, rc.dop, rc.qnum
	sql, modeS, budget := rc.sql, rc.modeS, rc.budget
	timeout, streams, maxConc := rc.timeout, rc.streams, rc.maxConc
	obsAddr, traceOut := rc.obsAddr, rc.traceOut
	mode, err := parseMode(modeS)
	if err != nil {
		return err
	}
	memBudget, err := mem.ParseBytes(budget)
	if err != nil {
		return err
	}
	eng, err := bfcbo.Open(bfcbo.Config{
		ScaleFactor: sf, Seed: seed, DOP: dop, MemBudget: memBudget,
		MaxConcurrent: maxConc,
		Faults:        rc.faults,
		Retry:         bfcbo.RetryPolicy{MaxRetries: rc.retries},
		Overload: bfcbo.OverloadConfig{
			MaxQueueWaitP95: rc.shedWait, MinFreeFraction: rc.shedFree,
		},
	})
	if err != nil {
		return err
	}
	// The obs server's lifecycle is owned here: serve errors land in lnErr
	// (a late listen failure — port stolen, fd exhaustion — surfaces at
	// exit instead of being dropped), and shutdown() drains in-flight
	// scrapes with a timeout instead of leaking the listener.
	var lnErr chan error
	shutdown := func() error { return nil }
	if obsAddr != "" {
		h := &obs.Handler{
			Registry: eng.MetricsRegistry(), Recorder: eng.FlightRecorder(),
			Inspector: eng.Inspector(), Workload: eng.Workload(),
			RunSQL: func(ctx context.Context, sql string) (int, error) {
				o, err := eng.RunSQLContext(ctx, sql, mode)
				if err != nil {
					return 0, err
				}
				return o.Rows, nil
			},
		}
		srv := &http.Server{Addr: obsAddr, Handler: h}
		lnErr = make(chan error, 1)
		go func() {
			err := srv.ListenAndServe()
			if err == http.ErrServerClosed {
				err = nil
			}
			lnErr <- err
		}()
		select {
		case err := <-lnErr:
			if err == nil {
				err = fmt.Errorf("server closed before serving")
			}
			return fmt.Errorf("obs-listen: %w", err)
		case <-time.After(50 * time.Millisecond):
			fmt.Printf("observability on http://%s/metrics\n", obsAddr)
		}
		var once sync.Once
		var shutErr error
		shutdown = func() error {
			once.Do(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					shutErr = fmt.Errorf("obs-listen shutdown: %w", err)
					return
				}
				if err := <-lnErr; err != nil {
					shutErr = fmt.Errorf("obs-listen: %w", err)
				}
			})
			return shutErr
		}
		defer shutdown() //nolint:errcheck // error path reported by the explicit call
	}
	runOne := func() (*bfcbo.Output, error) {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		if sql != "" {
			return eng.RunSQLContext(ctx, sql, mode)
		}
		if qnum >= 1 && qnum <= 22 {
			b, err := eng.TPCH(qnum)
			if err != nil {
				return nil, err
			}
			return eng.RunContext(ctx, b, mode)
		}
		return nil, fmt.Errorf("pass -q 1..22 or -sql (see -h)")
	}
	var out *bfcbo.Output
	var traces []*obs.Trace
	if streams > 1 {
		// Concurrency demo: the same query on every stream, sharing the
		// engine's worker-slot pool and memory budget.
		outs := make([]*bfcbo.Output, streams)
		errs := make([]error, streams)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < streams; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i], errs[i] = runOne()
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for i, o := range outs {
			fmt.Printf("stream %d: rows=%d exec=%s queue-wait=%s slot-busy=%s handoffs=%d\n",
				i, o.Rows, o.ExecTime.Round(time.Microsecond),
				o.Sched.QueueWait.Round(time.Microsecond),
				o.Sched.SlotBusy.Round(time.Microsecond), o.Sched.Handoffs)
		}
		fmt.Printf("%d streams in %s (%.1f queries/s)\n",
			streams, wall.Round(time.Microsecond), float64(streams)/wall.Seconds())
		out = outs[0]
		for _, o := range outs {
			traces = append(traces, o.Trace)
		}
	} else if out, err = runOne(); err != nil {
		return err
	} else {
		traces = append(traces, out.Trace)
	}
	fmt.Print(out.Explain)
	fmt.Printf("join order: %s\n", out.JoinOrder)
	fmt.Printf("rows=%d  blooms=%d  plan=%s  exec=%s\n",
		out.Rows, out.Blooms, out.PlanningTime, out.ExecTime)
	if out.Spill.Spilled() {
		fmt.Printf("spilled %s across %d partition/run files (recursion depth %d, peak memory %s)\n",
			mem.FormatBytes(out.Spill.Bytes), out.Spill.Partitions, out.Spill.Depth,
			mem.FormatBytes(eng.MemoryBroker().Peak()))
	}
	for _, bs := range out.BloomStats {
		fmt.Printf("BF#%d [%s] inserted=%d tested=%d passed=%d saturation=%.3f\n",
			bs.ID, bs.Strategy, bs.Inserted, bs.Tested, bs.Passed, bs.Saturation)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeAll(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d queries)\n", traceOut, len(traces))
	}
	if obsAddr != "" {
		// Keep serving until interrupted, then shut the server down
		// gracefully — draining in-flight scrapes — instead of dying with
		// the listener open.
		fmt.Println("serving observability endpoints; Ctrl-C to exit")
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		<-ctx.Done()
		stop()
		fmt.Println("\nshutting down observability server")
	}
	return shutdown()
}

func parseMode(s string) (bfcbo.Mode, error) {
	switch strings.ToLower(s) {
	case "nobf":
		return bfcbo.NoBF, nil
	case "bfpost":
		return bfcbo.BFPost, nil
	case "bfcbo":
		return bfcbo.BFCBO, nil
	case "naive":
		return bfcbo.Naive, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}
