// Command bench regenerates the paper's tables and figures on the
// in-memory TPC-H substrate.
//
//	bench -experiment table2   # Table 2 + Fig. 5: No-BF vs BF-Post vs BF-CBO
//	bench -experiment table3   # Table 3: same with Heuristic 7 enabled
//	bench -experiment fig1     # Figure 1: Q12 plan analysis
//	bench -experiment fig6     # Figure 6: Q7 plan analysis
//	bench -experiment fig4     # Figure 4: §3 running example on TPC-H Q12-like shape
//	bench -experiment naive    # §3.1 naive planning-time blow-up
//	bench -experiment mae      # Table 2's cardinality-MAE comparison
//	bench -experiment ablation # per-heuristic ablation
//	bench -experiment scaling  # DOP {1,2,4,8} executor scaling on Bloom-heavy queries
//	bench -experiment all      # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"bfcbo/internal/bench"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.02, "TPC-H scale factor")
		seed = flag.Uint64("seed", 2025, "data generation seed")
		dop  = flag.Int("dop", 8, "degree of parallelism")
		reps = flag.Int("reps", 3, "repetitions per query (first is warm-up)")
		exp  = flag.String("experiment", "all", "table2|table3|fig1|fig6|naive|mae|ablation|all")
		jout = flag.String("json", "BENCH_PR2.json", "machine-readable Table 2 + scaling report path (empty disables)")
	)
	flag.Parse()
	if err := run(*sf, *seed, *dop, *reps, *exp, *jout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(sf float64, seed uint64, dop, reps int, exp, jsonPath string) error {
	mk := func(h7 bool) (*bench.Harness, error) {
		return bench.NewHarness(bench.Config{
			ScaleFactor: sf, Seed: seed, DOP: dop, Reps: reps, Heuristic7: h7,
		})
	}
	w := os.Stdout

	runTable2 := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		t, err := h.RunTable2(nil)
		if err != nil {
			return err
		}
		t.Print(w, fmt.Sprintf("Table 2 / Figure 5 — normalized TPC-H latencies (SF %g, DOP %d)", sf, dop))
		var scaling []bench.ScalingRow
		if jsonPath != "" {
			// The JSON report carries the DOP scaling table alongside the
			// Table 2 cells so one file tracks the PR's perf trajectory.
			scaling, err = h.RunScaling(nil, nil)
			if err != nil {
				return err
			}
			bench.PrintScaling(w, scaling)
			if err := h.WriteJSON(jsonPath, t, scaling); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", jsonPath)
		}
		return nil
	}
	runScaling := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunScaling(nil, nil)
		if err != nil {
			return err
		}
		bench.PrintScaling(w, rows)
		return nil
	}
	runTable3 := func() error {
		h, err := mk(true)
		if err != nil {
			return err
		}
		t, err := h.RunTable2(nil)
		if err != nil {
			return err
		}
		t.Print(w, fmt.Sprintf("Table 3 — Heuristic 7 enabled (SF %g, DOP %d)", sf, dop))
		return nil
	}
	runFig := func(q int, label string) error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", label)
		return h.FigureReport(w, q)
	}
	runNaive := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunNaiveBlowup(3, 6, 2_000_000)
		if err != nil {
			return err
		}
		bench.PrintNaive(w, rows)
		return nil
	}
	runMAE := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		t, err := h.RunTable2(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "cardinality estimation MAE (intermediate plan nodes)\n")
		fmt.Fprintf(w, "%-4s %14s %14s\n", "Q#", "BF-Post", "BF-CBO")
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%-4d %14.1f %14.1f\n", r.Query, r.MAEPost, r.MAECBO)
		}
		fmt.Fprintf(w, "mean: BF-Post %.4g  BF-CBO %.4g  improvement %.1f%%\n",
			t.MeanMAEPost, t.MeanMAECBO, t.MAEImprovementPct)
		return nil
	}
	runAblation := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunAblation(nil)
		if err != nil {
			return err
		}
		bench.PrintAblation(w, rows)
		return nil
	}

	switch exp {
	case "table2":
		return runTable2()
	case "table3":
		return runTable3()
	case "fig1":
		return runFig(12, "Figure 1 — TPC-H Q12 join order with/without BF-CBO")
	case "fig6":
		return runFig(7, "Figure 6 — TPC-H Q7 join order and predicate transfer")
	case "fig4":
		return runFig(12, "Figure 4 — running-example shape (Q12 as the 2-join instance)")
	case "naive":
		return runNaive()
	case "mae":
		return runMAE()
	case "ablation":
		return runAblation()
	case "scaling":
		return runScaling()
	case "all":
		for _, f := range []func() error{runTable2, runTable3,
			func() error { return runFig(12, "Figure 1 — Q12") },
			func() error { return runFig(7, "Figure 6 — Q7") },
			runNaive, runMAE, runAblation} {
			if err := f(); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
