// Command bench regenerates the paper's tables and figures on the
// in-memory TPC-H substrate.
//
//	bench -experiment table2   # Table 2 + Fig. 5: No-BF vs BF-Post vs BF-CBO
//	bench -experiment table3   # Table 3: same with Heuristic 7 enabled
//	bench -experiment fig1     # Figure 1: Q12 plan analysis
//	bench -experiment fig6     # Figure 6: Q7 plan analysis
//	bench -experiment fig4     # Figure 4: §3 running example on TPC-H Q12-like shape
//	bench -experiment naive    # §3.1 naive planning-time blow-up
//	bench -experiment mae      # Table 2's cardinality-MAE comparison
//	bench -experiment ablation # per-heuristic ablation
//	bench -experiment scaling  # DOP {1,2,4,8} executor scaling on Bloom-heavy queries
//	bench -experiment memory   # memory-budget × DOP spill grid (BENCH_PR3.json)
//	bench -experiment concurrency # multi-stream throughput grid (BENCH_PR4.json)
//	bench -experiment hashtable # map-vs-flat hash-kernel ablation (BENCH_PR5.json)
//	bench -experiment scan     # scalar-vs-vectorized scan ablation (BENCH_PR6.json)
//	bench -experiment joinagg  # scalar-vs-batched probe/fold ablation (BENCH_PR7.json)
//	bench -experiment observability # metrics-vs-stats agreement + trace export (BENCH_PR8.json)
//	bench -experiment workload # live-inspector + fingerprint-history audit (BENCH_PR9.json)
//	bench -experiment faults   # fault-injection chaos + disabled-injector anchors (BENCH_PR10.json)
//	bench -experiment all      # everything
//
// A global -mem-budget (e.g. "64MB") constrains the executor in every
// experiment; -validate <path> checks a BENCH_PR3-style memory report, a
// BENCH_PR4-style concurrency report, a BENCH_PR8-style observability
// report, a BENCH_PR9-style workload report, a BENCH_PR10-style faults
// report, or a Chrome trace-event file (dispatching on content) and
// exits (the CI bench smoke). -streams
// narrows the concurrency grid. -obs-listen serves the workload
// experiment's live endpoints (/debug/queries/live, /debug/workload,
// /debug/pprof/) while its streams run, so they can be scraped mid-bench.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"bfcbo/internal/bench"
	"bfcbo/internal/mem"
	"bfcbo/internal/obs"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.02, "TPC-H scale factor")
		seed     = flag.Uint64("seed", 2025, "data generation seed")
		dop      = flag.Int("dop", 8, "degree of parallelism")
		reps     = flag.Int("reps", 3, "repetitions per query (first is warm-up)")
		exp      = flag.String("experiment", "all", "table2|table3|fig1|fig6|naive|mae|ablation|scaling|memory|concurrency|hashtable|scan|joinagg|observability|workload|faults|all")
		jout     = flag.String("json", "", "machine-readable report path (default: BENCH_PR2.json for table2, BENCH_PR3.json for memory, BENCH_PR4.json for concurrency, BENCH_PR5.json for hashtable, BENCH_PR6.json for scan, BENCH_PR7.json for joinagg; empty = default, \"-\" disables)")
		budget   = flag.String("mem-budget", "", `executor memory budget for all experiments, e.g. "64MB" (empty = unlimited)`)
		streams  = flag.String("streams", "", `concurrency experiment stream counts, e.g. "1,2,4,8" (empty = default; the streams=1 anchor and one multi-stream cell are always included)`)
		iters    = flag.Int("iters", 0, "concurrency experiment queries per stream (0 = default)")
		validate = flag.String("validate", "", "validate a memory or concurrency report at this path and exit")
		obsAddr  = flag.String("obs-listen", "", `serve the workload experiment's observability endpoints on this address (e.g. "127.0.0.1:8099") while it runs`)
	)
	flag.Parse()
	if *validate != "" {
		// Chrome trace-event files have no report wrapper — sniff and check
		// them before the report dispatch.
		if data, err := os.ReadFile(*validate); err == nil && obs.IsChromeTrace(data) {
			if err := obs.ValidateChrome(data); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: well-formed Chrome trace\n", *validate)
			return
		}
		kind, check := "memory report", bench.ValidateMemoryJSON
		switch {
		case bench.IsFaultsReport(*validate):
			kind, check = "faults report", bench.ValidateFaultsJSON
		case bench.IsWorkloadReport(*validate):
			kind, check = "workload report", bench.ValidateWorkloadJSON
		case bench.IsObservabilityReport(*validate):
			kind, check = "observability report", bench.ValidateObservabilityJSON
		case bench.IsConcurrencyReport(*validate):
			kind, check = "concurrency report", bench.ValidateConcurrencyJSON
		case bench.IsHashtableReport(*validate):
			kind, check = "hashtable report", bench.ValidateHashtableJSON
		case bench.IsScanReport(*validate):
			kind, check = "scan report", bench.ValidateScanJSON
		case bench.IsJoinAggReport(*validate):
			kind, check = "joinagg report", bench.ValidateJoinAggJSON
		}
		if err := check(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: well-formed %s\n", *validate, kind)
		return
	}
	if err := run(*sf, *seed, *dop, *reps, *exp, *jout, *budget, *streams, *iters, *obsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// parseInts parses a comma-separated int list ("" = nil).
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad int list %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(sf float64, seed uint64, dop, reps int, exp, jsonPath, budget, streamsList string, iters int, obsAddr string) error {
	memBudget, err := mem.ParseBytes(budget)
	if err != nil {
		return err
	}
	mk := func(h7 bool) (*bench.Harness, error) {
		return bench.NewHarness(bench.Config{
			ScaleFactor: sf, Seed: seed, DOP: dop, Reps: reps, Heuristic7: h7,
			MemBudget: memBudget,
		})
	}
	// Per-experiment default report paths; "-" disables JSON output. Under
	// -experiment all every report keeps its default path — a single
	// explicit -json would make table2 and memory clobber each other.
	allMode := exp == "all"
	pathFor := func(def string) string {
		switch {
		case jsonPath == "-":
			return ""
		case jsonPath == "" || allMode:
			return def
		default:
			return jsonPath
		}
	}
	w := os.Stdout

	runTable2 := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		t, err := h.RunTable2(nil)
		if err != nil {
			return err
		}
		t.Print(w, fmt.Sprintf("Table 2 / Figure 5 — normalized TPC-H latencies (SF %g, DOP %d)", sf, dop))
		var scaling []bench.ScalingRow
		if out := pathFor("BENCH_PR2.json"); out != "" {
			// The JSON report carries the DOP scaling table alongside the
			// Table 2 cells so one file tracks the PR's perf trajectory.
			scaling, err = h.RunScaling(nil, nil)
			if err != nil {
				return err
			}
			bench.PrintScaling(w, scaling)
			if err := h.WriteJSON(out, t, scaling); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runMemory := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		// A global -mem-budget narrows the grid to {unlimited, that budget}
		// instead of the default budget sweep.
		var budgets []int64
		if memBudget > 0 {
			budgets = []int64{0, memBudget}
		}
		rows, err := h.RunMemory(nil, nil, budgets)
		if err != nil {
			return err
		}
		bench.PrintMemory(w, rows)
		if out := pathFor("BENCH_PR3.json"); out != "" {
			if err := h.WriteMemoryJSON(out, rows); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runConcurrency := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		streams, err := parseInts(streamsList)
		if err != nil {
			return err
		}
		rows, single, err := h.RunConcurrency(nil, streams, nil, iters)
		if err != nil {
			return err
		}
		bench.PrintConcurrency(w, rows)
		if out := pathFor("BENCH_PR4.json"); out != "" {
			if err := h.WriteConcurrencyJSON(out, rows, single); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runHashtable := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunHashtable(nil, nil)
		if err != nil {
			return err
		}
		bench.PrintHashtable(w, rows)
		if out := pathFor("BENCH_PR5.json"); out != "" {
			if err := h.WriteHashtableJSON(out, rows); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runScan := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunScan(nil, nil)
		if err != nil {
			return err
		}
		bench.PrintScan(w, rows)
		if out := pathFor("BENCH_PR6.json"); out != "" {
			if err := h.WriteScanJSON(out, rows); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runJoinAgg := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunJoinAgg(nil, nil)
		if err != nil {
			return err
		}
		bench.PrintJoinAgg(w, rows)
		if out := pathFor("BENCH_PR7.json"); out != "" {
			if err := h.WriteJoinAggJSON(out, rows); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runObservability := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rep, traces, err := h.RunObservability(nil, 4, iters)
		if err != nil {
			return err
		}
		bench.PrintObservability(w, rep)
		if out := pathFor("BENCH_PR8.json"); out != "" {
			if err := h.WriteObservabilityJSON(out, rep); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
			// The final repetition's traces ride along as a Chrome
			// trace-event file next to the report.
			tracePath := strings.TrimSuffix(out, ".json") + "_trace.json"
			f, err := os.Create(tracePath)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeAll(f, traces); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", tracePath)
		}
		return nil
	}
	runWorkload := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		// The sinks are created up front so -obs-listen can serve them while
		// the experiment's streams are still running — the CI smoke curls
		// /debug/queries/live, /debug/workload and /debug/pprof/profile
		// mid-bench.
		sinks := &bench.ObsSinks{
			Registry:  obs.NewRegistry(),
			Inspector: obs.NewInspector(),
			Workload:  obs.NewWorkloadStore(0),
		}
		if obsAddr != "" {
			srv := &http.Server{Addr: obsAddr, Handler: &obs.Handler{
				Registry: sinks.Registry, Inspector: sinks.Inspector, Workload: sinks.Workload,
			}}
			lnErr := make(chan error, 1)
			go func() {
				err := srv.ListenAndServe()
				if err == http.ErrServerClosed {
					err = nil
				}
				lnErr <- err
			}()
			select {
			case err := <-lnErr:
				if err == nil {
					err = fmt.Errorf("server closed before serving")
				}
				return fmt.Errorf("obs-listen: %w", err)
			case <-time.After(50 * time.Millisecond):
				fmt.Fprintf(w, "serving observability on http://%s/ during the workload experiment\n", obsAddr)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					fmt.Fprintf(os.Stderr, "bench: obs-listen shutdown: %v\n", err)
				}
				<-lnErr
			}()
		}
		rep, err := h.RunWorkload(nil, 4, iters, sinks)
		if err != nil {
			return err
		}
		bench.PrintWorkload(w, rep)
		if out := pathFor("BENCH_PR9.json"); out != "" {
			if err := bench.WriteWorkloadJSON(out, rep); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runFaults := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rep, err := h.RunFaults(nil, 4, iters)
		if err != nil {
			return err
		}
		bench.PrintFaults(w, rep)
		if out := pathFor("BENCH_PR10.json"); out != "" {
			if err := bench.WriteFaultsJSON(out, rep); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", out)
		}
		return nil
	}
	runScaling := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunScaling(nil, nil)
		if err != nil {
			return err
		}
		bench.PrintScaling(w, rows)
		return nil
	}
	runTable3 := func() error {
		h, err := mk(true)
		if err != nil {
			return err
		}
		t, err := h.RunTable2(nil)
		if err != nil {
			return err
		}
		t.Print(w, fmt.Sprintf("Table 3 — Heuristic 7 enabled (SF %g, DOP %d)", sf, dop))
		return nil
	}
	runFig := func(q int, label string) error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", label)
		return h.FigureReport(w, q)
	}
	runNaive := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunNaiveBlowup(3, 6, 2_000_000)
		if err != nil {
			return err
		}
		bench.PrintNaive(w, rows)
		return nil
	}
	runMAE := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		t, err := h.RunTable2(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "cardinality estimation MAE (intermediate plan nodes)\n")
		fmt.Fprintf(w, "%-4s %14s %14s\n", "Q#", "BF-Post", "BF-CBO")
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%-4d %14.1f %14.1f\n", r.Query, r.MAEPost, r.MAECBO)
		}
		fmt.Fprintf(w, "mean: BF-Post %.4g  BF-CBO %.4g  improvement %.1f%%\n",
			t.MeanMAEPost, t.MeanMAECBO, t.MAEImprovementPct)
		return nil
	}
	runAblation := func() error {
		h, err := mk(false)
		if err != nil {
			return err
		}
		rows, err := h.RunAblation(nil)
		if err != nil {
			return err
		}
		bench.PrintAblation(w, rows)
		return nil
	}

	switch exp {
	case "table2":
		return runTable2()
	case "table3":
		return runTable3()
	case "fig1":
		return runFig(12, "Figure 1 — TPC-H Q12 join order with/without BF-CBO")
	case "fig6":
		return runFig(7, "Figure 6 — TPC-H Q7 join order and predicate transfer")
	case "fig4":
		return runFig(12, "Figure 4 — running-example shape (Q12 as the 2-join instance)")
	case "naive":
		return runNaive()
	case "mae":
		return runMAE()
	case "ablation":
		return runAblation()
	case "scaling":
		return runScaling()
	case "memory":
		return runMemory()
	case "concurrency":
		return runConcurrency()
	case "hashtable":
		return runHashtable()
	case "scan":
		return runScan()
	case "joinagg":
		return runJoinAgg()
	case "observability":
		return runObservability()
	case "workload":
		return runWorkload()
	case "faults":
		return runFaults()
	case "all":
		// runTable2 already covers the DOP scaling table in its JSON report.
		for _, f := range []func() error{runTable2, runTable3,
			func() error { return runFig(12, "Figure 1 — Q12") },
			func() error { return runFig(7, "Figure 6 — Q7") },
			runNaive, runMAE, runAblation, runMemory, runConcurrency, runHashtable, runScan, runJoinAgg, runObservability, runWorkload, runFaults} {
			if err := f(); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
