// Command tpchgen generates the in-memory TPC-H dataset and prints a
// summary of tables, row counts and analyzed statistics — a quick way to
// inspect what the other tools run against.
package main

import (
	"flag"
	"fmt"
	"os"

	"bfcbo/internal/datagen"
)

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "scale factor (1.0 ≈ TPC-H SF 1)")
		seed  = flag.Uint64("seed", 0, "generation seed (0 = default)")
		stats = flag.Bool("stats", false, "also print per-column statistics")
	)
	flag.Parse()
	ds, err := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	fmt.Print(datagen.DescribeDataset(ds))
	if *stats {
		for _, name := range ds.DB.TableNames() {
			meta := ds.Schema.MustTable(name)
			fmt.Printf("\n%s (%d rows)\n", name, int64(meta.RowCount))
			for _, c := range meta.Columns {
				fmt.Printf("  %-16s %-8s ndv=%-10.0f min=%-12.6g max=%-12.6g\n",
					c.Name, c.Type, c.Stats.NDV, c.Stats.Min, c.Stats.Max)
			}
		}
	}
}
