package bfcbo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bfcbo/internal/exec"
	"bfcbo/internal/faults"
	"bfcbo/internal/sched"
)

// Engine-level robustness: the retry policy's transient/deterministic
// classification and backoff math, the Config.Faults installer, the
// audit flag, and the fault/recovery metric series on /metrics.

func TestTransientErrClassification(t *testing.T) {
	ferr := &faults.Fault{Site: faults.ExecError, Seq: 3}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("exec: merge join supports inner joins only"), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{sched.ErrQueueTimeout, true},
		{sched.ErrOverloaded, true},
		{&sched.OverloadError{After: time.Second, Reason: "test"}, true},
		{ferr, true},
		// A contained panic is retryable only when the panic value was a
		// transient injected fault; a string panic (the rowset paths) is
		// deterministic and must not be retried.
		{&exec.PanicError{Query: "q1", Where: "worker", Value: ferr}, true},
		{&exec.PanicError{Query: "q1", Where: "worker", Value: "no relation 3 in row set"}, false},
	}
	for i, c := range cases {
		if got := transientErr(c.err); got != c.want {
			t.Errorf("case %d (%v): transient = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	plain := errors.New("transient-ish")
	for n, want := range []time.Duration{10, 20, 40, 80, 80} {
		want *= time.Millisecond
		for trial := 0; trial < 16; trial++ {
			d := p.backoff(n, plain)
			if d < want || d > want+want/2 {
				t.Fatalf("backoff(%d) = %s, want [%s, %s]", n, d, want, want+want/2)
			}
		}
	}
	// A shed query's retry-after hint raises the floor above the
	// exponential schedule.
	shed := &sched.OverloadError{After: 300 * time.Millisecond, Reason: "test"}
	if d := p.backoff(0, shed); d < 300*time.Millisecond || d > 450*time.Millisecond {
		t.Fatalf("backoff with retry-after hint = %s, want [300ms, 450ms]", d)
	}
}

// TestEngineRetriesExhaustTyped: with a 100%-probability injected worker
// error every attempt fails, so the engine must burn exactly MaxRetries
// re-attempts, surface the typed fault, count the retries on /metrics —
// and the opt-in audit must still find the engine spotless.
func TestEngineRetriesExhaustTyped(t *testing.T) {
	spillDir := t.TempDir()
	e, err := Open(Config{
		ScaleFactor: 0.003, Seed: 9, DOP: 4, SpillDir: spillDir,
		Retry: RetryPolicy{MaxRetries: 2, BaseBackoff: time.Millisecond},
		Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.New(11, map[faults.Site]float64{faults.ExecError: 1}))
	defer faults.Disable()

	b, err := e.TPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(b, BFCBO)
	if err == nil {
		t.Fatal("every attempt fails, yet Run returned nil")
	}
	var f *faults.Fault
	if !errors.As(err, &f) || f.Site != faults.ExecError {
		t.Fatalf("exhausted retries surfaced an untyped error: %v", err)
	}

	// Scrape while the injector is still installed — the injected-fault
	// series is a counter func over the live injector.
	var buf bytes.Buffer
	if err := e.MetricsRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	if !strings.Contains(prom, "bfcbo_query_retries_total 2") {
		t.Errorf("want 2 retries:\n%s", grepProm(prom, "retries|faults|shed|panics"))
	}
	// At least one fault per attempt (concurrent workers may each fire
	// one before the stop flag propagates, so the exact count varies).
	if v := promValue(t, prom, "bfcbo_faults_injected_total"); v < 3 {
		t.Errorf("faults injected = %d, want >= 3 (one per attempt)", v)
	}

	faults.Disable()
	if out, err := e.Run(b, BFCBO); err != nil || out.Rows == 0 {
		t.Fatalf("engine unhealthy after chaos: rows=%v err=%v", out, err)
	}
}

// TestEngineShedMetricAndNoRetryWithoutPolicy: an injected admission
// shed surfaces ErrOverloaded with a retry-after hint; without a retry
// policy the engine gives up immediately and counts one shed query.
func TestEngineShedMetricAndNoRetryWithoutPolicy(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.New(5, map[faults.Site]float64{faults.SchedAdmit: 1}))
	defer faults.Disable()

	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(b, BFCBO)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("injected admission shed: err = %v, want ErrOverloaded", err)
	}
	var oe *sched.OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter() <= 0 {
		t.Fatalf("shed error carries no retry-after: %v", err)
	}

	var buf bytes.Buffer
	if err := e.MetricsRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"bfcbo_queries_shed_total 1",
		"bfcbo_sched_shed_total 1",
		"bfcbo_query_retries_total 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepProm(prom, "retries|shed"))
		}
	}
}

// TestConfigFaultsSpec: Config.Faults installs the process-wide injector
// and bad specs fail Open.
func TestConfigFaultsSpec(t *testing.T) {
	defer faults.Disable()
	if _, err := Open(Config{ScaleFactor: 0.003, Faults: "seed=1,nonsense=0.5"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 2,
		Faults: "seed=1,exec.error=1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(b, BFCBO)
	var f *faults.Fault
	if !errors.As(err, &f) {
		t.Fatalf("spec-installed injector fired nothing: %v", err)
	}
}

// promValue extracts one counter's value from a Prometheus exposition.
func promValue(t *testing.T, prom, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(prom, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && !strings.HasPrefix(line, "#") {
			return v
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// grepProm filters a Prometheus exposition to lines matching any of the
// |-separated substrings, for readable test failures.
func grepProm(prom, pat string) string {
	var out []string
	for _, line := range strings.Split(prom, "\n") {
		for _, p := range strings.Split(pat, "|") {
			if strings.Contains(line, p) {
				out = append(out, line)
				break
			}
		}
	}
	return strings.Join(out, "\n")
}
