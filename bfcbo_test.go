package bfcbo

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func engine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("zero scale factor should fail")
	}
	if _, err := Open(Config{ScaleFactor: -1}); err == nil {
		t.Fatal("negative scale factor should fail")
	}
}

func TestRunSQLAllModes(t *testing.T) {
	e := engine(t)
	sql := `SELECT * FROM orders o, lineitem l
	        WHERE o.o_orderkey = l.l_orderkey
	          AND l.l_shipmode IN ('MAIL','SHIP')
	          AND l.l_receiptdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'`
	var rows int
	for i, mode := range []Mode{NoBF, BFPost, BFCBO} {
		out, err := e.RunSQL(sql, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if i == 0 {
			rows = out.Rows
		} else if out.Rows != rows {
			t.Fatalf("%s changed results: %d vs %d", mode, out.Rows, rows)
		}
		if out.Explain == "" || out.JoinOrder == "" {
			t.Fatalf("%s: empty explain output", mode)
		}
	}
}

func TestTPCHAccess(t *testing.T) {
	e := engine(t)
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(b, BFCBO)
	if err != nil {
		t.Fatal(err)
	}
	if out.Blooms == 0 {
		t.Fatalf("Q12 under BF-CBO should use Bloom filters:\n%s", out.Explain)
	}
	if len(out.BloomStats) == 0 {
		t.Fatal("missing bloom runtime stats")
	}
	if !strings.Contains(out.Explain, "BF#") {
		t.Fatalf("explain lacks Bloom annotations:\n%s", out.Explain)
	}
	if _, err := e.TPCH(23); err == nil {
		t.Fatal("TPCH(23) should fail")
	}
}

// TestConcurrentEngineRuns drives one Engine from several goroutines
// through RunContext: every stream must match the serial row count, the
// scheduler must drain, and the Sched report must carry slot occupancy.
func TestConcurrentEngineRuns(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4, MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.Run(b, BFCBO)
	if err != nil {
		t.Fatal(err)
	}
	const streams = 6
	outs := make([]*Output, streams)
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = e.RunContext(context.Background(), b, BFCBO)
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if outs[i].Rows != serial.Rows {
			t.Fatalf("stream %d: rows = %d, want %d", i, outs[i].Rows, serial.Rows)
		}
		if outs[i].Sched.SlotBusy <= 0 {
			t.Fatalf("stream %d: no slot occupancy reported: %+v", i, outs[i].Sched)
		}
	}
	if e.Scheduler().InUse() != 0 || e.Scheduler().Admitted() != 0 {
		t.Fatalf("engine scheduler dirty: inUse=%d admitted=%d",
			e.Scheduler().InUse(), e.Scheduler().Admitted())
	}
}

// TestRunContextDeadline: an already-expired context must surface its
// error instead of executing.
func TestRunContextDeadline(t *testing.T) {
	e := engine(t)
	b, err := e.TPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.RunContext(ctx, b, BFCBO); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
}

func TestParseErrorsSurface(t *testing.T) {
	e := engine(t)
	if _, err := e.RunSQL("SELECT nothing", NoBF); err == nil {
		t.Fatal("bad SQL should error")
	}
	if _, err := e.ParseSQL("SELECT * FROM ghost"); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestPlanOnly(t *testing.T) {
	e := engine(t)
	b, err := e.TPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Plan(b, BFCBO)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanningTime <= 0 || res.Plan == nil {
		t.Fatalf("degenerate plan result: %+v", res)
	}
}
