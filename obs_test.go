package bfcbo

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"bfcbo/internal/obs"
)

// TestTraceSpanTreeDOP1 checks the lifecycle trace of a DOP-1 run: span
// starts are monotone (the Spans() contract), every pipeline span nests
// inside the query span, breaker finishes nest inside their pipeline, and
// the recorded pipeline set matches Output.Pipelines exactly. At DOP 1 the
// pipeline schedule is deterministic, so two runs must record the same
// span names.
func TestTraceSpanTreeDOP1(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(b, BFCBO)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no trace on output")
	}
	spans := out.Trace.Spans()
	if len(spans) == 0 {
		t.Fatal("empty trace")
	}
	var query *obs.Span
	pipelines := map[int]obs.Span{} // tid -> pipeline span
	for i := range spans {
		s := spans[i]
		if s.Dur < 0 {
			t.Fatalf("span %q has negative duration %v", s.Name, s.Dur)
		}
		if i > 0 && s.Start.Before(spans[i-1].Start) {
			t.Fatalf("span starts not monotone: %q at %v before %q at %v",
				s.Name, s.Start, spans[i-1].Name, spans[i-1].Start)
		}
		switch s.Cat {
		case "query":
			query = &spans[i]
		case "pipeline":
			pipelines[s.TID] = s
		}
	}
	if query == nil {
		t.Fatal("no query span")
	}
	if len(pipelines) != len(out.Pipelines) {
		t.Fatalf("trace has %d pipeline spans, output has %d pipelines",
			len(pipelines), len(out.Pipelines))
	}
	const eps = 2 * time.Millisecond
	within := func(inner, outer obs.Span) bool {
		return !inner.Start.Before(outer.Start.Add(-eps)) &&
			!inner.Start.Add(inner.Dur).After(outer.Start.Add(outer.Dur+eps))
	}
	for _, s := range spans {
		switch s.Cat {
		case "pipeline":
			if !within(s, *query) {
				t.Fatalf("pipeline span %q [%v +%v] escapes query span [%v +%v]",
					s.Name, s.Start, s.Dur, query.Start, query.Dur)
			}
		case "breaker", "phase":
			pl, ok := pipelines[s.TID]
			if !ok {
				t.Fatalf("%s span %q on tid %d has no pipeline span", s.Cat, s.Name, s.TID)
			}
			if !within(s, pl) {
				t.Fatalf("%s span %q [%v +%v] escapes pipeline span [%v +%v]",
					s.Cat, s.Name, s.Start, s.Dur, pl.Start, pl.Dur)
			}
		}
	}

	// Determinism: a second run at DOP 1 records the same span names.
	names := func(tr *obs.Trace) string {
		var ns []string
		for _, s := range tr.Spans() {
			ns = append(ns, s.Cat+"/"+s.Name)
		}
		return strings.Join(ns, "\n")
	}
	out2, err := e.Run(b, BFCBO)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := names(out2.Trace), names(out.Trace); got != want {
		t.Fatalf("DOP-1 span tree not deterministic:\nrun 1:\n%s\nrun 2:\n%s", want, got)
	}

	// The trace exports as a loadable Chrome trace-event file.
	var buf bytes.Buffer
	if err := out.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !obs.IsChromeTrace(buf.Bytes()) {
		t.Fatal("export not recognized as a Chrome trace")
	}
	if err := obs.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsAgreeWithSchedStats cross-checks the engine registry against
// per-query ground truth: the queries counter and latency-histogram count
// match the number of runs, the slot-busy counter matches the summed
// SchedStat occupancy within 1%, and the latency-histogram sum matches the
// summed per-query exec walls within 2% (the histogram's window starts a
// hair inside RunContext's).
func TestMetricsAgreeWithSchedStats(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 6
	var sumWall, sumBusy time.Duration
	for i := 0; i < runs; i++ {
		out, err := e.Run(b, BFCBO)
		if err != nil {
			t.Fatal(err)
		}
		sumWall += out.ExecTime + out.Sched.QueueWait
		sumBusy += out.Sched.SlotBusy
	}
	snap := e.MetricsRegistry().Snapshot()
	if n := snap.Counters["bfcbo_queries_total"]; n != runs {
		t.Fatalf("bfcbo_queries_total = %d, want %d", n, runs)
	}
	lat, ok := snap.Histograms["bfcbo_query_latency_seconds"]
	if !ok {
		t.Fatal("latency histogram missing from snapshot")
	}
	if lat.Count != runs {
		t.Fatalf("latency histogram count = %d, want %d", lat.Count, runs)
	}
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / b * 100 }
	if busy := float64(snap.Counters["bfcbo_slot_busy_nanos_total"]); relErr(busy, float64(sumBusy)) > 1 {
		t.Fatalf("slot-busy counter %.0fns vs summed SchedStat %dns: >1%% apart", busy, sumBusy)
	}
	if relErr(lat.Sum, sumWall.Seconds()) > 2 {
		t.Fatalf("latency histogram sum %.6fs vs summed walls %.6fs: >2%% apart",
			lat.Sum, sumWall.Seconds())
	}
	// Live gauges: an idle engine holds no slots but still reports capacity.
	if got := snap.Gauges["bfcbo_sched_slots"]; got != 4 {
		t.Fatalf("bfcbo_sched_slots = %v, want 4", got)
	}
	if got := snap.Gauges["bfcbo_sched_slots_in_use"]; got != 0 {
		t.Fatalf("bfcbo_sched_slots_in_use = %v on an idle engine", got)
	}
	if got := snap.Counters["bfcbo_sched_finished_total"]; got != runs {
		t.Fatalf("bfcbo_sched_finished_total = %d, want %d", got, runs)
	}

	// The exposition parses under the minimal Prometheus checker.
	var buf bytes.Buffer
	if err := e.MetricsRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintProm(&buf); err != nil {
		t.Fatalf("/metrics output fails lint: %v", err)
	}
}

// TestLegacyExplainAnalyzeSchedulerLine: the legacy interpreter now holds a
// worker slot for its whole run, so EXPLAIN ANALYZE must report the
// scheduler line there too (it used to be silently omitted).
func TestLegacyExplainAnalyzeSchedulerLine(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4, LegacyExecutor: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(b, BFCBO)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.ExplainAnalyze, "scheduler:") {
		t.Fatalf("legacy EXPLAIN ANALYZE omits scheduler line:\n%s", out.ExplainAnalyze)
	}
	if out.Sched.SlotBusy <= 0 {
		t.Fatalf("legacy run reports no slot occupancy: %+v", out.Sched)
	}
}

// TestFlightRecorderOnEngine: every finished query lands in the recorder
// with its EXPLAIN ANALYZE and trace attached; a negative SlowQueryLog
// disables recording.
func TestFlightRecorderOnEngine(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4, SlowQueryLog: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Run(b, BFCBO); err != nil {
			t.Fatal(err)
		}
	}
	rec := e.FlightRecorder()
	if rec == nil {
		t.Fatal("flight recorder disabled by default config")
	}
	if rec.Len() != 2 {
		t.Fatalf("recorder has %d entries, want 2", rec.Len())
	}
	for _, qr := range rec.Recent() {
		if qr.Explain == "" {
			t.Fatalf("record %d has no EXPLAIN ANALYZE", qr.ID)
		}
		if qr.Trace == nil {
			t.Fatalf("record %d has no trace", qr.ID)
		}
		if qr.Latency <= 0 || qr.Rows <= 0 {
			t.Fatalf("degenerate record: %+v", qr)
		}
		if _, ok := rec.Find(qr.ID); !ok {
			t.Fatalf("Find(%d) missed a retained record", qr.ID)
		}
	}

	off, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 4, SlowQueryLog: -1})
	if err != nil {
		t.Fatal(err)
	}
	if off.FlightRecorder() != nil {
		t.Fatal("negative SlowQueryLog should disable the recorder")
	}
	if _, err := off.Run(b, BFCBO); err != nil {
		t.Fatal(err) // nil recorder must not panic the run path
	}
}
