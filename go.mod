module bfcbo

go 1.24
