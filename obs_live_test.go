package bfcbo

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"bfcbo/internal/obs"
	"bfcbo/internal/plan"
	"bfcbo/internal/query"
)

// TestKillLandsWithinMorselBoundary: Kill routes through the inspector
// into the executor's run-wide stop flag, so a killed query must return
// promptly — workers exit at their next morsel boundary, not at end of
// pipeline — with an error wrapping obs.ErrKilled. The query may finish
// before the kill lands at test scale, so the attempt loop retries until
// one kill connects mid-run.
func TestKillLandsWithinMorselBoundary(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.02, Seed: 9, DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 25; attempt++ {
		errCh := make(chan error, 1)
		go func() {
			_, err := e.Run(b, BFCBO)
			errCh <- err
		}()
		// Catch the query in flight via the live view, then kill it.
		var id int64 = -1
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if snaps := e.Inspector().Snapshot(); len(snaps) > 0 {
				id = snaps[0].ID
				break
			}
			time.Sleep(20 * time.Microsecond)
		}
		if id < 0 {
			<-errCh // finished before we ever saw it; try again
			continue
		}
		if !e.Kill(id) {
			<-errCh // finished between the snapshot and the kill
			continue
		}
		killAt := time.Now()
		err := <-errCh
		if err == nil {
			continue // the final morsel completed before the flag was seen
		}
		if !errors.Is(err, obs.ErrKilled) {
			t.Fatalf("killed run returned %v, want an error wrapping obs.ErrKilled", err)
		}
		// Morsel-boundary promptness: winding down must not wait for the
		// pipeline to finish its remaining morsels.
		if wound := time.Since(killAt); wound > time.Second {
			t.Fatalf("kill took %v to land — not a morsel boundary", wound)
		}
		if n := e.Inspector().Len(); n != 0 {
			t.Fatalf("%d queries still registered live after the kill", n)
		}
		// The engine keeps working after a kill.
		if _, err := e.Run(b, BFCBO); err != nil {
			t.Fatalf("run after kill failed: %v", err)
		}
		return
	}
	t.Skip("query never caught in flight in 25 attempts (machine too fast for this scale)")
}

// TestLiveProgressMonotonicUnderScrape is the multi-stream -race test:
// several streams run concurrently while one goroutine polls
// Inspector.Snapshot checking that every query's completion fraction and
// per-pipeline morsel counters only ever grow (no torn snapshots), and
// another continuously serializes the registry, live view, and workload
// history the way HTTP scrapers do.
func TestLiveProgressMonotonicUnderScrape(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.01, Seed: 9, DOP: 4, SlowQueryLog: 64})
	if err != nil {
		t.Fatal(err)
	}
	var blocks []*query.Block
	for _, q := range []int{5, 9, 12} {
		b, err := e.TPCH(q)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup

	// Sampler: monotonicity of fractions and morsel counters per query id.
	sawLive := 0
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		lastFrac := map[int64]float64{}
		lastMorsels := map[int64]map[int]int64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			snaps := e.Inspector().Snapshot()
			if len(snaps) > 0 {
				sawLive++
			}
			for _, q := range snaps {
				if q.Fraction < 0 || q.Fraction > 1 {
					t.Errorf("query %d fraction %v out of [0,1]", q.ID, q.Fraction)
					return
				}
				if q.Fraction < lastFrac[q.ID] {
					t.Errorf("query %d fraction retreated %v -> %v", q.ID, lastFrac[q.ID], q.Fraction)
					return
				}
				lastFrac[q.ID] = q.Fraction
				pm := lastMorsels[q.ID]
				if pm == nil {
					pm = map[int]int64{}
					lastMorsels[q.ID] = pm
				}
				for _, p := range q.Pipelines {
					if p.MorselsDone < pm[p.ID] {
						t.Errorf("query %d pipeline %d morsels retreated %d -> %d",
							q.ID, p.ID, pm[p.ID], p.MorselsDone)
						return
					}
					pm[p.ID] = p.MorselsDone
				}
			}
		}
	}()

	// Serializer: the exact read paths the HTTP handler exercises, racing
	// against the executors' progress folds and registry updates.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.MetricsRegistry().WriteProm(io.Discard)
			_ = e.Inspector().WriteJSON(io.Discard)
			_ = e.Workload().WriteJSON(io.Discard)
		}
	}()

	const streams, rounds = 4, 3
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, b := range blocks {
					if _, err := e.Run(b, BFCBO); err != nil {
						errs[s] = err
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if sawLive == 0 {
		t.Fatal("sampler never observed an in-flight query")
	}
	if n := e.Inspector().Len(); n != 0 {
		t.Fatalf("%d queries still registered live after all streams finished", n)
	}
}

// TestWorkloadHistoryAgreesWithRecorder: the per-fingerprint aggregates
// must be bookkeeping-identical to the flight recorder's per-query ground
// truth — same exec counts per shape, same mean latency, same mode — and
// fingerprints must be stable across runs of a query and distinct across
// different queries.
func TestWorkloadHistoryAgreesWithRecorder(t *testing.T) {
	e, err := Open(Config{ScaleFactor: 0.005, Seed: 9, DOP: 4, SlowQueryLog: 64})
	if err != nil {
		t.Fatal(err)
	}
	runs := map[int]int{12: 4, 5: 3, 9: 2}
	for q, n := range runs {
		b, err := e.TPCH(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := e.Run(b, BFCBO); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Ground truth: group the recorder's retained records by fingerprint.
	recCount := map[string]int64{}
	recLatNs := map[string]int64{}
	for _, qr := range e.FlightRecorder().Recent() {
		if qr.Fingerprint == "" {
			t.Fatalf("record %d (%s) has no fingerprint", qr.ID, qr.Label)
		}
		recCount[qr.Fingerprint]++
		recLatNs[qr.Fingerprint] += int64(qr.Latency)
	}
	total := 0
	for _, n := range runs {
		total += n
	}
	if len(e.FlightRecorder().Recent()) != total {
		t.Fatalf("recorder retained %d records, want all %d", len(e.FlightRecorder().Recent()), total)
	}
	// Three queries, three distinct shapes.
	if len(recCount) != len(runs) {
		t.Fatalf("%d distinct fingerprints across %d distinct queries", len(recCount), len(runs))
	}

	entries := e.Workload().Snapshot()
	if len(entries) != len(runs) {
		t.Fatalf("workload store has %d shapes, want %d", len(entries), len(runs))
	}
	for _, entry := range entries {
		wantCount, ok := recCount[entry.Fingerprint]
		if !ok {
			t.Fatalf("store shape %s (%s) absent from the recorder", entry.Fingerprint, entry.Label)
		}
		if entry.Count != wantCount {
			t.Fatalf("shape %s: store count %d != recorder count %d",
				entry.Fingerprint, entry.Count, wantCount)
		}
		recMeanMS := float64(recLatNs[entry.Fingerprint]) / float64(wantCount) / 1e6
		if diff := entry.MeanMS - recMeanMS; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("shape %s: store mean %.6fms != recorder mean %.6fms",
				entry.Fingerprint, entry.MeanMS, recMeanMS)
		}
		if entry.Errors != 0 {
			t.Fatalf("shape %s reports %d errors on an all-success workload", entry.Fingerprint, entry.Errors)
		}
		// The store's hex keys parse back to live fingerprints findable via
		// the typed API.
		fp := plan.ParseFingerprint(entry.Fingerprint)
		if fp == 0 {
			t.Fatalf("shape key %q does not parse", entry.Fingerprint)
		}
		if found, ok := e.Workload().Find(fp); !ok || found.Count != entry.Count {
			t.Fatalf("Find(%s) disagrees with Snapshot", entry.Fingerprint)
		}
	}

	// Re-running a query folds into the same shape: counts advance, no new
	// fingerprint appears.
	b, err := e.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(b, BFCBO); err != nil {
		t.Fatal(err)
	}
	if got := e.Workload().Len(); got != len(runs) {
		t.Fatalf("re-run minted a new fingerprint: %d shapes, want %d", got, len(runs))
	}

	// A different optimizer mode is a different shape.
	if _, err := e.Run(b, NoBF); err != nil {
		t.Fatal(err)
	}
	if got := e.Workload().Len(); got != len(runs)+1 {
		t.Fatalf("mode change did not mint a new fingerprint: %d shapes, want %d",
			got, len(runs)+1)
	}

	// WorkloadHistory < 0 disables the store; runs must not panic.
	off, err := Open(Config{ScaleFactor: 0.003, Seed: 9, DOP: 2, WorkloadHistory: -1})
	if err != nil {
		t.Fatal(err)
	}
	if off.Workload() != nil {
		t.Fatal("negative WorkloadHistory should disable the store")
	}
	b2, err := off.TPCH(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.Run(b2, BFCBO); err != nil {
		t.Fatal(err)
	}
}
