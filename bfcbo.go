// Package bfcbo is the public API of the BF-CBO reproduction: a cost-based
// query engine whose bottom-up optimizer can include Bloom filters directly
// in join enumeration (the method of Zeyl et al., "Including Bloom Filters
// in Bottom-up Optimization", SIGMOD-Companion 2025), together with an
// in-memory TPC-H data generator, an SMP executor, and the BF-Post / No-BF
// baselines the paper compares against.
//
// Quickstart:
//
//	eng, err := bfcbo.Open(bfcbo.Config{ScaleFactor: 0.01})
//	q, err := eng.ParseSQL(`SELECT * FROM orders o, lineitem l
//	                        WHERE o.o_orderkey = l.l_orderkey
//	                          AND l.l_shipmode IN ('MAIL','SHIP')`)
//	out, err := eng.Run(q, bfcbo.BFCBO)
//	fmt.Println(out.Explain, out.Rows)
package bfcbo

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"bfcbo/internal/datagen"
	"bfcbo/internal/exec"
	"bfcbo/internal/faults"
	"bfcbo/internal/mem"
	"bfcbo/internal/obs"
	"bfcbo/internal/optimizer"
	"bfcbo/internal/plan"
	"bfcbo/internal/query"
	"bfcbo/internal/sched"
	"bfcbo/internal/sqlparser"
	"bfcbo/internal/tpch"
)

// Mode selects the optimizer strategy; see the package doc of
// internal/optimizer for semantics.
type Mode = optimizer.Mode

// The four optimizer modes.
const (
	NoBF   = optimizer.NoBF
	BFPost = optimizer.BFPost
	BFCBO  = optimizer.BFCBO
	Naive  = optimizer.Naive
)

// Config configures an engine instance.
type Config struct {
	// ScaleFactor sizes the generated TPC-H dataset (1.0 ≈ 1 GB of the
	// official benchmark; 0.01–0.1 is laptop-friendly). Required.
	ScaleFactor float64
	// Seed fixes data generation; 0 uses a built-in default.
	Seed uint64
	// DOP is the degree of parallelism for planning and execution;
	// 0 defaults to 8.
	DOP int
	// LegacyExecutor selects the original operator-at-a-time materializing
	// executor instead of the default morsel-driven pipelined one. It
	// exists for A/B comparisons; the pipelined executor is the default.
	// Legacy runs pass admission control and hold one worker slot for
	// their whole (single-threaded) run, so they queue fairly behind
	// pipelined queries and report scheduler stats like any other query.
	LegacyExecutor bool
	// MemBudget bounds the bytes of operator state the executor holds in
	// RAM (0 = unlimited). Joins and sorts whose memory grants are denied
	// spill to temp files (grace hash join / external merge sort) and
	// still return exact results; spill activity is reported in
	// Output.Spill and EXPLAIN ANALYZE. All queries of one engine draw
	// from a single shared broker, so concurrent Run calls share the
	// budget. Ignored by the legacy executor.
	MemBudget int64
	// SpillDir is the parent directory for spill files ("" = os.TempDir()).
	// Every run owns — and removes — its own query-scoped spill
	// subdirectory, even on error, so concurrent queries never touch each
	// other's temp files.
	SpillDir string
	// MaxConcurrent caps the queries the engine admits at once; further
	// RunContext calls queue FIFO behind them. 0 means unlimited admission
	// (the DOP-sized worker-slot pool still bounds actual parallelism).
	MaxConcurrent int
	// QueueTimeout bounds how long a query may wait in the admission
	// queue before failing with sched.ErrQueueTimeout; 0 means wait until
	// the caller's context cancels.
	QueueTimeout time.Duration
	// SlowQueryLog sizes the engine's flight recorder — the ring of recent
	// queries retained with full EXPLAIN ANALYZE, scheduler/memory/spill
	// stats, and lifecycle trace (served at /debug/queries when the debug
	// endpoints are enabled). 0 defaults to 32; negative disables recording.
	SlowQueryLog int
	// SlowQueryMin gates flight-recorder admission: queries faster than
	// this are not retained. Zero records every query.
	SlowQueryMin time.Duration
	// WorkloadHistory sizes the engine's workload history store — the
	// bounded per-fingerprint aggregate (exec count, p50/p95 latency,
	// observed-vs-estimated operator rows, spill bytes) keyed by each
	// query's normalized shape, served at /debug/workload. 0 defaults to
	// obs.DefaultWorkloadShapes; negative disables the store.
	WorkloadHistory int
	// Faults, when non-empty, installs the process-wide deterministic
	// fault injector from a spec like
	// "seed=42,spill.write=0.01,exec.panic=0.005,spill.diskfull=64MB"
	// (see internal/faults.Parse for the grammar). The injector is
	// process-global — every engine in the process shares it — and stays
	// installed until faults.Disable. Empty leaves the injector alone.
	Faults string
	// Overload sets the scheduler's overload-shedding thresholds; the
	// zero value disables shedding. When either signal trips — admission
	// queue-wait p95 above MaxQueueWaitP95, or broker free fraction
	// below MinFreeFraction — non-priority admissions fail fast with an
	// error wrapping ErrOverloaded that carries a retry-after hint.
	Overload OverloadConfig
	// Retry is the engine's opt-in policy for transparently retrying
	// queries that failed transiently (overload shedding, admission
	// queue timeout, injected transient faults). The zero value disables
	// retries. Deterministic failures — SQL errors, cancellation, kills,
	// contained panics with non-error values — are never retried.
	Retry RetryPolicy
	// Audit, when set, runs the post-query invariant audit (broker holds
	// zero bytes, scheduler shows no slots/admissions/waiters, no
	// leftover spill files) after every query that finishes with no
	// other query in flight, folding any violation into the returned
	// error. Meant for tests and chaos runs. Spill files are audited
	// only when SpillDir is set explicitly.
	Audit bool
}

// OverloadConfig re-exports the scheduler's overload-controller
// thresholds for Config.Overload; see sched.OverloadConfig.
type OverloadConfig = sched.OverloadConfig

// ErrOverloaded is the sentinel wrapped by shed admissions; callers that
// manage their own retries can match it with errors.Is and read the
// retry-after hint via sched.OverloadError.
var ErrOverloaded = sched.ErrOverloaded

// RetryPolicy bounds the engine's automatic retry of transient query
// failures. Backoff is exponential with jitter: attempt n sleeps
// between d and 1.5·d where d = min(BaseBackoff·2ⁿ, MaxBackoff), raised
// to the scheduler's retry-after hint when the failure carries one.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure
	// (0 disables retrying).
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay; 0 means 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2s.
	MaxBackoff time.Duration
	// Budget caps the total time spent sleeping between retries; once
	// the next backoff would exceed it, the last error is returned
	// instead. 0 means no budget cap.
	Budget time.Duration
}

// SchedStat is the per-query scheduling report: admission queue wait,
// worker-slot waits and occupancy, and preempted-slot handoffs. See
// sched.Stat for field semantics.
type SchedStat = sched.Stat

// Engine bundles a generated database with planner, executor, and the
// process-wide query scheduler all its runs are admitted through.
type Engine struct {
	cfg     Config
	ds      *datagen.Dataset
	broker  *mem.Broker
	sched   *sched.Scheduler
	reg     *obs.Registry
	metrics *obs.Metrics
	rec     *obs.FlightRecorder
	insp    *obs.Inspector
	work    *obs.WorkloadStore
}

// Open generates the TPC-H dataset and returns a ready engine.
func Open(cfg Config) (*Engine, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("bfcbo: Config.ScaleFactor must be positive")
	}
	if cfg.DOP <= 0 {
		cfg.DOP = 8
	}
	if cfg.Faults != "" {
		inj, err := faults.Parse(cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("bfcbo: Config.Faults: %w", err)
		}
		faults.Enable(inj)
	}
	ds, err := datagen.Generate(datagen.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	broker := mem.NewBroker(cfg.MemBudget)
	sch := sched.New(sched.Config{
		Slots:         cfg.DOP,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueTimeout:  cfg.QueueTimeout,
		Broker:        broker,
		Overload:      cfg.Overload,
	})
	reg := obs.NewRegistry()
	var rec *obs.FlightRecorder
	if cfg.SlowQueryLog >= 0 {
		n := cfg.SlowQueryLog
		if n == 0 {
			n = 32
		}
		rec = obs.NewFlightRecorder(n)
		rec.MinLatency = cfg.SlowQueryMin
	}
	var work *obs.WorkloadStore
	if cfg.WorkloadHistory >= 0 {
		work = obs.NewWorkloadStore(cfg.WorkloadHistory)
	}
	e := &Engine{
		cfg: cfg, ds: ds, broker: broker, sched: sch,
		reg: reg, metrics: obs.NewMetrics(reg), rec: rec,
		insp: obs.NewInspector(), work: work,
	}
	registerEngineMetrics(reg, sch, broker)
	return e, nil
}

// registerEngineMetrics exposes the scheduler's and memory broker's live
// state through gauge/counter funcs — read at scrape time, so the running
// engine pays nothing for them.
func registerEngineMetrics(reg *obs.Registry, sch *sched.Scheduler, broker *mem.Broker) {
	reg.NewGaugeFunc("bfcbo_sched_slots", "Worker-slot pool capacity (DOP).",
		func() float64 { return float64(sch.Capacity()) })
	reg.NewGaugeFunc("bfcbo_sched_slots_in_use", "Worker slots currently held.",
		func() float64 { return float64(sch.InUse()) })
	reg.NewGaugeFunc("bfcbo_sched_queries_admitted", "Queries currently admitted (running).",
		func() float64 { return float64(sch.Admitted()) })
	reg.NewGaugeFunc("bfcbo_sched_queries_queued", "Queries waiting in the admission queue.",
		func() float64 { return float64(sch.Queued()) })
	reg.NewGaugeFunc("bfcbo_sched_slot_waiters", "Workers currently blocked on a slot.",
		func() float64 { return float64(sch.SlotWaiters()) })
	reg.NewCounterFunc("bfcbo_sched_admitted_total", "Queries admitted since engine open.",
		func() int64 { return sch.Totals().Admitted })
	reg.NewCounterFunc("bfcbo_sched_finished_total", "Admitted queries finished since engine open.",
		func() int64 { return sch.Totals().Finished })
	reg.NewCounterFunc("bfcbo_sched_queue_timeouts_total", "Admissions failed by queue timeout.",
		func() int64 { return sch.Totals().Timeouts })
	reg.NewCounterFunc("bfcbo_sched_rejected_total", "Admissions rejected outright.",
		func() int64 { return sch.Totals().Rejections })
	reg.NewGaugeFunc("bfcbo_mem_budget_bytes", "Executor memory budget (0 = unlimited).",
		func() float64 { return float64(broker.Budget()) })
	reg.NewGaugeFunc("bfcbo_mem_used_bytes", "Bytes currently reserved from the broker.",
		func() float64 { return float64(broker.Used()) })
	reg.NewGaugeFunc("bfcbo_mem_peak_bytes", "Peak bytes reserved since engine open.",
		func() float64 { return float64(broker.Peak()) })
	reg.NewCounterFunc("bfcbo_mem_denials_total", "Reservation grows denied by the budget.",
		func() int64 { return broker.Denials() })
	reg.NewCounterFunc("bfcbo_mem_spill_triggers_total", "Denied grows that triggered an operator spill.",
		func() int64 { return broker.SpillTriggers() })
	reg.NewCounterFunc("bfcbo_sched_shed_total", "Admissions shed by the overload controller.",
		func() int64 { return sch.Totals().Shed })
	reg.NewCounterFunc("bfcbo_faults_injected_total", "Faults fired by the process-wide injector (0 when disabled).",
		faults.TotalFired)
}

// MemoryBroker exposes the engine's process-wide memory broker (budget,
// current/peak usage, denial counts) for monitoring.
func (e *Engine) MemoryBroker() *mem.Broker { return e.broker }

// Scheduler exposes the engine's process-wide query scheduler (slot pool
// occupancy, admitted and queued query counts) for monitoring.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// MetricsRegistry exposes the engine's metric registry: per-query latency
// and wait histograms, engine-total counters, and live scheduler/broker
// gauges, all exportable as Prometheus text via its WriteProm.
func (e *Engine) MetricsRegistry() *obs.Registry { return e.reg }

// FlightRecorder exposes the engine's slow-query flight recorder, or nil
// when Config.SlowQueryLog is negative.
func (e *Engine) FlightRecorder() *obs.FlightRecorder { return e.rec }

// Inspector exposes the engine's in-flight query inspector: live
// per-pipeline progress, scheduler and memory-grant state of every
// running query (served at /debug/queries/live), plus Kill.
func (e *Engine) Inspector() *obs.Inspector { return e.insp }

// Workload exposes the engine's workload history store — per-fingerprint
// exec counts, latency quantiles, and observed-vs-estimated cardinality
// aggregates (served at /debug/workload) — or nil when
// Config.WorkloadHistory is negative.
func (e *Engine) Workload() *obs.WorkloadStore { return e.work }

// Kill requests cancellation of a running query by the ID shown in
// /debug/queries/live (and in Output.Trace.QueryID). The run's workers
// stop at their next morsel boundary and the corresponding
// Run/RunContext call returns an error wrapping obs.ErrKilled. Kill
// reports whether the ID named an in-flight query.
func (e *Engine) Kill(id int64) bool { return e.insp.Kill(id) }

// Dataset gives access to the underlying schema and storage for advanced
// use (building custom query blocks).
func (e *Engine) Dataset() *datagen.Dataset { return e.ds }

// ParseSQL parses a select-project-join statement against the TPC-H schema.
func (e *Engine) ParseSQL(sql string) (*query.Block, error) {
	return sqlparser.Parse(e.ds.Schema, sql)
}

// TPCH returns the built-in join block for a TPC-H query number (1–22).
func (e *Engine) TPCH(num int) (*query.Block, error) {
	q, ok := tpch.Get(num)
	if !ok {
		return nil, fmt.Errorf("bfcbo: no TPC-H query %d", num)
	}
	return q.Build(e.ds.Schema), nil
}

// Output is the result of planning and executing one query block.
type Output struct {
	// Rows is the number of result rows of the join block.
	Rows int
	// Explain is the physical plan rendered as text, followed by the
	// EXPLAIN ANALYZE-style tree annotated with per-operator actual rows
	// and wall times.
	Explain string
	// Blooms is the number of Bloom filters in the plan.
	Blooms int
	// PlanningTime and ExecTime are the measured phase latencies.
	PlanningTime time.Duration
	ExecTime     time.Duration
	// JoinOrder is a parenthesised signature of the join tree.
	JoinOrder string
	// BloomStats reports what each filter did at runtime.
	BloomStats []exec.BloomRuntime
	// ExplainAnalyze is the plan annotated with observed per-operator rows,
	// batch counts and wall times (EXPLAIN ANALYZE style).
	ExplainAnalyze string
	// OpStats are the raw per-operator runtime counters in pipeline
	// execution order (empty when LegacyExecutor is set).
	OpStats []exec.OpStat
	// Pipelines reports each executed pipeline of the morsel-driven
	// executor in pipeline-ID order, including the breaker finish wall and
	// its merge/sort/build/bloom phase split (empty when LegacyExecutor is
	// set). Pipelines are DAG-scheduled: entries with disjoint dependency
	// chains ran concurrently, so their walls can overlap.
	Pipelines []exec.PipelineStat
	// Spill totals the run's spill activity under Config.MemBudget (all
	// zero for unlimited-budget and legacy runs).
	Spill exec.SpillStat
	// Sched reports the query's trip through the process-wide scheduler:
	// admission queue wait, worker-slot wait and occupancy, and
	// preempted-slot handoffs to concurrent queries.
	Sched SchedStat
	// Trace is the query's lifecycle trace — admission queue, per-pipeline
	// spans, breaker finish phases — exportable as Chrome trace-event JSON
	// via its WriteChrome (load in chrome://tracing or Perfetto).
	Trace *obs.Trace
}

// Plan optimizes a block without executing it.
func (e *Engine) Plan(b *query.Block, mode Mode) (*optimizer.Result, error) {
	opts := optimizer.DefaultOptions(e.cfg.ScaleFactor)
	opts.Mode = mode
	return optimizer.Optimize(b, opts)
}

// Run optimizes and executes a block under the given mode.
func (e *Engine) Run(b *query.Block, mode Mode) (*Output, error) {
	return e.RunContext(context.Background(), b, mode)
}

// RunContext is Run with admission control and cancellation: the query is
// admitted through the engine's process-wide scheduler — queueing behind
// Config.MaxConcurrent and the memory-broker admission gate, subject to
// Config.QueueTimeout — and ctx cancellation or deadline expiry (queued
// or mid-run) stops every pipeline at the next morsel and surfaces
// ctx.Err(). Any number of RunContext calls may execute concurrently on
// one Engine; they share the DOP-sized worker-slot pool (legacy-executor
// runs excepted — see Config.LegacyExecutor) and the memory budget, and
// each gets its own spill subdirectory.
//
// Under Config.Retry, transient failures — overload sheds, admission
// queue timeouts, injected transient faults — are retried with
// exponential backoff before the error surfaces; each attempt is a full
// re-execution with its own flight-recorder entry.
func (e *Engine) RunContext(ctx context.Context, b *query.Block, mode Mode) (*Output, error) {
	res, err := e.Plan(b, mode)
	if err != nil {
		return nil, err
	}
	// The fingerprint is the query's normalized shape identity — block +
	// plan shape + mode, parameterized on literals — computed once per run
	// here and carried through the inspector, the flight recorder, the
	// workload history, and the workers' pprof labels.
	fp := plan.Fingerprint(b, res.Plan)
	out, err := e.runOnce(ctx, b, mode, res, fp)
	var slept time.Duration
	for retries := 0; err != nil && retries < e.cfg.Retry.MaxRetries && transientErr(err); retries++ {
		d := e.cfg.Retry.backoff(retries, err)
		if e.cfg.Retry.Budget > 0 && slept+d > e.cfg.Retry.Budget {
			break
		}
		select {
		case <-ctx.Done():
			return nil, errors.Join(err, ctx.Err())
		case <-time.After(d):
		}
		slept += d
		e.metrics.Retries.Inc()
		out, err = e.runOnce(ctx, b, mode, res, fp)
	}
	if e.cfg.Audit && e.sched.Admitted() == 0 {
		// Only audit spill files under an explicitly configured dir —
		// a shared os.TempDir() can hold other processes' files.
		if aerr := exec.Audit(exec.AuditState{
			Broker: e.broker, Sched: e.sched, SpillDir: e.cfg.SpillDir,
		}); aerr != nil {
			err = errors.Join(err, aerr)
			out = nil
		}
	}
	return out, err
}

// transientErr reports whether a failed run may be retried: the failure
// must be environmental (shedding, queue timeout, injected transient
// fault), not a property of the query. Cancellation and kills are the
// caller's decision and never retried; contained panics retry only when
// the panic value itself was a transient injected fault.
func transientErr(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, obs.ErrKilled) {
		return false
	}
	if errors.Is(err, sched.ErrQueueTimeout) || errors.Is(err, sched.ErrOverloaded) {
		return true
	}
	var f *faults.Fault
	return errors.As(err, &f) && f.Transient()
}

// backoff computes the sleep before re-attempt n (0-based): exponential
// from BaseBackoff capped at MaxBackoff, raised to the failure's
// retry-after hint when it carries one, plus up to 50% jitter so
// concurrently shed queries don't re-arrive in lockstep.
func (p RetryPolicy) backoff(n int, err error) time.Duration {
	base, ceil := p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	d := base
	for i := 0; i < n && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	var ra interface{ RetryAfter() time.Duration }
	if errors.As(err, &ra) && ra.RetryAfter() > d {
		d = ra.RetryAfter()
	}
	return d + rand.N(d/2+1)
}

// runOnce executes one attempt of an already-planned query: admission,
// execution, metrics fold, flight-recorder and workload-history entries.
func (e *Engine) runOnce(ctx context.Context, b *query.Block, mode Mode, res *optimizer.Result, fp uint64) (*Output, error) {
	start := time.Now()
	tr := obs.NewTrace(8)
	r, err := exec.RunContext(ctx, e.ds.DB, b, res.Plan, exec.Options{
		DOP: e.cfg.DOP, Legacy: e.cfg.LegacyExecutor,
		Broker: e.broker, SpillDir: e.cfg.SpillDir,
		Sched:   e.sched,
		Metrics: e.metrics, Trace: tr,
		Inspector: e.insp, Fingerprint: fp,
	})
	execTime := time.Since(start)
	if err != nil {
		var pe *exec.PanicError
		if errors.As(err, &pe) {
			e.metrics.PanicsRecovered.Inc()
		}
		if errors.Is(err, sched.ErrOverloaded) {
			e.metrics.QueriesShed.Inc()
		}
		e.rec.Record(obs.QueryRecord{
			ID: tr.QueryID, Label: tr.Label, Mode: mode.String(),
			Fingerprint: plan.FingerprintHex(fp),
			Start:       start, Latency: execTime, Err: err.Error(), Trace: tr,
		})
		e.work.Observe(obs.WorkloadObservation{
			Fingerprint: fp, Label: b.Name, Mode: mode.String(),
			Latency: execTime, Failed: true,
		})
		return nil, err
	}
	// ExecTime reports execution, not admission: time queued behind other
	// queries is broken out in Sched.QueueWait.
	if execTime -= r.Sched.QueueWait; execTime < 0 {
		execTime = 0
	}
	analyzed := r.ExplainAnalyze(res.Plan)
	sp := r.TotalSpill()
	e.rec.Record(obs.QueryRecord{
		ID: tr.QueryID, Label: tr.Label, Mode: mode.String(),
		Fingerprint: plan.FingerprintHex(fp),
		Start:       start, Latency: execTime + r.Sched.QueueWait, Rows: r.Rows,
		Explain:   analyzed,
		QueueWait: r.Sched.QueueWait, SlotWait: r.Sched.SlotWait,
		SlotBusy: r.Sched.SlotBusy, Handoffs: r.Sched.Handoffs,
		MemPeak:    e.broker.Peak(),
		SpillBytes: sp.Bytes, SpillRead: sp.BytesRead,
		SpillParts: int64(sp.Partitions), SpillDepth: int64(sp.Depth),
		Trace: tr,
	})
	// Fold the run into its shape's workload-history aggregate: the same
	// latency the flight recorder stores, plus the observed-vs-estimated
	// operator cardinalities the ROADMAP's feedback loop will consume.
	var opsActual, opsEst float64
	for _, a := range r.Actuals {
		opsActual += a.Actual
		opsEst += a.Node.EstRows()
	}
	e.work.Observe(obs.WorkloadObservation{
		Fingerprint: fp, Label: b.Name, Mode: mode.String(),
		Latency: execTime + r.Sched.QueueWait, Rows: int64(r.Rows),
		Ops: int64(len(r.Actuals)), OpsActualRows: opsActual, OpsEstRows: opsEst,
		SpillBytes: sp.Bytes,
	})
	return &Output{
		Rows:           r.Rows,
		Explain:        res.Plan.Explain() + analyzed,
		Blooms:         res.Plan.CountBlooms(),
		PlanningTime:   res.PlanningTime,
		ExecTime:       execTime,
		JoinOrder:      res.Plan.JoinOrderSignature(),
		BloomStats:     r.BloomStats,
		ExplainAnalyze: analyzed,
		OpStats:        r.OpStats,
		Pipelines:      r.Pipelines,
		Spill:          sp,
		Sched:          r.Sched,
		Trace:          tr,
	}, nil
}

// RunSQL is the one-call convenience: parse, plan, execute.
func (e *Engine) RunSQL(sql string, mode Mode) (*Output, error) {
	return e.RunSQLContext(context.Background(), sql, mode)
}

// RunSQLContext is RunSQL with the RunContext admission and cancellation
// semantics.
func (e *Engine) RunSQLContext(ctx context.Context, sql string, mode Mode) (*Output, error) {
	b, err := e.ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, b, mode)
}
