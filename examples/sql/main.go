// sql demonstrates the SQL front end: ad-hoc select-project-join statements
// are parsed, bound against the TPC-H catalog, optimized with Bloom-filter-
// aware costing, and executed — the engine as a downstream user would
// embed it.
package main

import (
	"fmt"
	"log"

	"bfcbo"
)

func main() {
	eng, err := bfcbo.Open(bfcbo.Config{ScaleFactor: 0.01, DOP: 4})
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name string
		sql  string
	}{
		{"german suppliers' stock", `
			SELECT * FROM partsupp ps, supplier s, nation n
			WHERE ps.ps_suppkey = s.s_suppkey
			  AND s.s_nationkey = n.n_nationkey
			  AND n.n_name = 'GERMANY'`},
		{"brass parts from europe", `
			SELECT * FROM part p, partsupp ps, supplier s, nation n, region r
			WHERE p.p_partkey = ps.ps_partkey
			  AND s.s_suppkey = ps.ps_suppkey
			  AND s.s_nationkey = n.n_nationkey
			  AND n.n_regionkey = r.r_regionkey
			  AND r.r_name = 'EUROPE'
			  AND p.p_size = 15
			  AND p.p_type LIKE '%BRASS%'`},
		{"urgent mail shipments", `
			SELECT * FROM orders o, lineitem l
			WHERE o.o_orderkey = l.l_orderkey
			  AND o.o_orderpriority = '1-URGENT'
			  AND l.l_shipmode = 'MAIL'
			  AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1995-06-30'`},
	}

	for _, q := range queries {
		fmt.Printf("== %s\n", q.name)
		for _, mode := range []bfcbo.Mode{bfcbo.BFPost, bfcbo.BFCBO} {
			out, err := eng.RunSQL(q.sql, mode)
			if err != nil {
				log.Fatalf("%s (%s): %v", q.name, mode, err)
			}
			fmt.Printf("  %-8s rows=%-8d blooms=%d  order=%s  plan=%s exec=%s\n",
				mode, out.Rows, out.Blooms, out.JoinOrder, out.PlanningTime, out.ExecTime)
		}
	}
}
