// Quickstart: open a small TPC-H engine, run one query under the three
// optimizer modes of the paper, and compare plans, Bloom filter counts and
// latencies.
package main

import (
	"fmt"
	"log"

	"bfcbo"
)

func main() {
	eng, err := bfcbo.Open(bfcbo.Config{ScaleFactor: 0.01, DOP: 8})
	if err != nil {
		log.Fatal(err)
	}

	// TPC-H Q12: orders joined with a heavily filtered lineitem.
	block, err := eng.TPCH(12)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []bfcbo.Mode{bfcbo.NoBF, bfcbo.BFPost, bfcbo.BFCBO} {
		out, err := eng.Run(block, mode)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		fmt.Printf("=== %s\n", mode)
		fmt.Print(out.Explain)
		fmt.Printf("rows=%d  blooms=%d  planning=%s  exec=%s\n\n",
			out.Rows, out.Blooms, out.PlanningTime, out.ExecTime)
	}

	// The same engine accepts ad-hoc SQL.
	out, err := eng.RunSQL(`
		SELECT * FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey
		  AND l.l_orderkey = o.o_orderkey
		  AND c.c_mktsegment = 'BUILDING'
		  AND o.o_orderdate < DATE '1995-03-15'
		  AND l.l_shipdate > DATE '1995-03-15'`, bfcbo.BFCBO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad-hoc Q3: rows=%d blooms=%d join order %s\n",
		out.Rows, out.Blooms, out.JoinOrder)
}
