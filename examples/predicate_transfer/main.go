// predicate_transfer reproduces the paper's Figure 6 on TPC-H Q7: the
// nation filters are the only selective local predicates, six relations
// deep. BF-CBO picks a join order where Bloom filters chain the predicate
// outward — nation filters customer, a filter from customer reduces orders,
// a filter from orders reduces lineitem — while BF-Post is stuck with the
// one filter its fixed plan allows.
package main

import (
	"fmt"
	"log"

	"bfcbo"
)

func main() {
	eng, err := bfcbo.Open(bfcbo.Config{ScaleFactor: 0.02, DOP: 8})
	if err != nil {
		log.Fatal(err)
	}
	block, err := eng.TPCH(7)
	if err != nil {
		log.Fatal(err)
	}

	post, err := eng.Run(block, bfcbo.BFPost)
	if err != nil {
		log.Fatal(err)
	}
	cbo, err := eng.Run(block, bfcbo.BFCBO)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== BF-Post")
	fmt.Print(post.Explain)
	fmt.Printf("blooms=%d  exec=%s\n\n", post.Blooms, post.ExecTime)

	fmt.Println("=== BF-CBO")
	fmt.Print(cbo.Explain)
	fmt.Printf("blooms=%d  exec=%s\n\n", cbo.Blooms, cbo.ExecTime)

	fmt.Println("Bloom filter chain under BF-CBO (predicate transfer):")
	for _, bs := range cbo.BloomStats {
		pct := 0.0
		if bs.Tested > 0 {
			pct = 100 * float64(bs.Passed) / float64(bs.Tested)
		}
		fmt.Printf("  BF#%d [%s]: inserted=%d tested=%d passed=%d (%.1f%% kept)\n",
			bs.ID, bs.Strategy, bs.Inserted, bs.Tested, bs.Passed, pct)
	}
	fmt.Printf("\nBF-CBO applies %d filters where BF-Post applies %d; exec %s vs %s\n",
		cbo.Blooms, post.Blooms, cbo.ExecTime, post.ExecTime)
}
