// join_order_flip reproduces the paper's Figure 1 on TPC-H Q12: without
// Bloom-filter-aware costing the planner builds the hash table on the big
// orders table, and post-processing cannot place any filter (the probe side
// is a foreign key referencing an unfiltered primary key — Heuristic 3).
// With BF-CBO the join inputs flip, a Bloom filter built from the filtered
// lineitem applies to the orders scan, and both the estimated and observed
// input row counts collapse.
package main

import (
	"fmt"
	"log"

	"bfcbo"
)

func main() {
	eng, err := bfcbo.Open(bfcbo.Config{ScaleFactor: 0.02, DOP: 8})
	if err != nil {
		log.Fatal(err)
	}
	block, err := eng.TPCH(12)
	if err != nil {
		log.Fatal(err)
	}

	post, err := eng.Run(block, bfcbo.BFPost)
	if err != nil {
		log.Fatal(err)
	}
	cbo, err := eng.Run(block, bfcbo.BFCBO)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== panel (a): BF-Post — no Bloom filter can be placed")
	fmt.Print(post.Explain)
	fmt.Printf("latency: plan %s + exec %s, blooms %d\n\n",
		post.PlanningTime, post.ExecTime, post.Blooms)

	fmt.Println("=== panel (b): BF-CBO — join inputs flipped, filter on orders")
	fmt.Print(cbo.Explain)
	fmt.Printf("latency: plan %s + exec %s, blooms %d\n\n",
		cbo.PlanningTime, cbo.ExecTime, cbo.Blooms)

	for _, bs := range cbo.BloomStats {
		kept := float64(bs.Passed) / float64(bs.Tested) * 100
		fmt.Printf("BF#%d (%s): tested %d orders rows, passed %d (%.1f%%), saturation %.3f\n",
			bs.ID, bs.Strategy, bs.Tested, bs.Passed, kept, bs.Saturation)
	}
	if post.JoinOrder != cbo.JoinOrder {
		fmt.Printf("\njoin order changed: %s  ->  %s\n", post.JoinOrder, cbo.JoinOrder)
	}
	speedup := float64(post.ExecTime) / float64(cbo.ExecTime)
	fmt.Printf("execution speedup of BF-CBO over BF-Post: %.2fx\n", speedup)
}
