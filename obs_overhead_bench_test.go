package bfcbo

import (
	"context"
	"testing"

	"bfcbo/internal/exec"
	"bfcbo/internal/obs"
	"bfcbo/internal/plan"
)

func BenchmarkLiveInstrumentationOverhead(b *testing.B) {
	e, err := Open(Config{ScaleFactor: 0.02, Seed: 2025, DOP: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []int{5, 21} {
		blk, err := e.TPCH(q)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Plan(blk, BFCBO)
		if err != nil {
			b.Fatal(err)
		}
		fp := plan.Fingerprint(blk, res.Plan)
		for _, cfg := range []struct {
			name string
			insp *obs.Inspector
			fp   uint64
		}{
			{"bare", nil, 0},
			{"instrumented", obs.NewInspector(), fp},
		} {
			b.Run(blk.Name+"/"+cfg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := exec.RunContext(context.Background(), e.Dataset().DB, blk, res.Plan, exec.Options{
						DOP: 8, Inspector: cfg.insp, Fingerprint: cfg.fp,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
