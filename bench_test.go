// Benchmarks regenerating the paper's tables and figures. Each benchmark
// corresponds to one experiment of the evaluation section (see DESIGN.md's
// per-experiment index); run them all with
//
//	go test -bench=. -benchmem
//
// Reported custom metrics: normalized latencies (×NoBF), planner times and
// Bloom filter counts, matching what the paper's tables print.
package bfcbo

import (
	"fmt"
	"testing"

	"bfcbo/internal/bench"
	"bfcbo/internal/optimizer"
	"bfcbo/internal/tpch"
)

const (
	benchSF  = 0.02
	benchDOP = 8
)

func newHarness(b *testing.B, h7 bool) *bench.Harness {
	b.Helper()
	h, err := bench.NewHarness(bench.Config{
		ScaleFactor: benchSF, Seed: 2025, DOP: benchDOP, Reps: 1, Heuristic7: h7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkFigure1_Q12JoinOrder regenerates Figure 1: Q12 executed under
// BF-Post and BF-CBO; the flip shows as the bfcbo/bfpost latency ratio.
func BenchmarkFigure1_Q12JoinOrder(b *testing.B) {
	h := newHarness(b, false)
	for _, mode := range []optimizer.Mode{optimizer.BFPost, optimizer.BFCBO} {
		b.Run(mode.String(), func(b *testing.B) {
			var blooms int
			for i := 0; i < b.N; i++ {
				qr, err := h.RunQuery(12, mode)
				if err != nil {
					b.Fatal(err)
				}
				blooms = qr.Blooms
			}
			b.ReportMetric(float64(blooms), "blooms")
		})
	}
}

// BenchmarkFigure4_RunningExample regenerates the §3 running example's
// shape: a two-join chain with a selective middle relation (Q12 is the
// TPC-H instance of it). Reported metric: estimate of the filtered scan.
func BenchmarkFigure4_RunningExample(b *testing.B) {
	h := newHarness(b, false)
	for i := 0; i < b.N; i++ {
		cbo, err := h.RunQuery(12, optimizer.BFCBO)
		if err != nil {
			b.Fatal(err)
		}
		if cbo.Blooms == 0 {
			b.Fatal("running example lost its Bloom filter")
		}
	}
}

// BenchmarkTable2_TPCH regenerates Table 2 / Figure 5: every analyzed query
// under the three modes. The normalized latencies are reported as metrics.
func BenchmarkTable2_TPCH(b *testing.B) {
	h := newHarness(b, false)
	for i := 0; i < b.N; i++ {
		t, err := h.RunTable2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.TotalNormPost, "norm-bfpost")
		b.ReportMetric(t.TotalNormCBO, "norm-bfcbo")
		b.ReportMetric(t.TotalPct, "pct-improvement")
		b.ReportMetric(t.MAEImprovementPct, "mae-improvement-pct")
	}
}

// BenchmarkTable3_Heuristic7 regenerates Table 3: the same suite with the
// sub-plan cap enabled; planner time should drop versus Table 2.
func BenchmarkTable3_Heuristic7(b *testing.B) {
	h := newHarness(b, true)
	for i := 0; i < b.N; i++ {
		t, err := h.RunTable2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.TotalNormCBO, "norm-bfcbo-h7")
		b.ReportMetric(t.TotalPlannerCBOMS, "planner-ms")
	}
}

// BenchmarkFigure6_Q7 regenerates Figure 6: Q7's predicate-transfer plan.
func BenchmarkFigure6_Q7(b *testing.B) {
	h := newHarness(b, false)
	for _, mode := range []optimizer.Mode{optimizer.BFPost, optimizer.BFCBO} {
		b.Run(mode.String(), func(b *testing.B) {
			var blooms int
			for i := 0; i < b.N; i++ {
				qr, err := h.RunQuery(7, mode)
				if err != nil {
					b.Fatal(err)
				}
				blooms = qr.Blooms
			}
			b.ReportMetric(float64(blooms), "blooms")
		})
	}
}

// BenchmarkNaiveBlowup regenerates §3.1's planning-time explosion: naive
// versus two-phase planner latency on chain joins of 3..6 tables.
func BenchmarkNaiveBlowup(b *testing.B) {
	h := newHarness(b, false)
	for n := 3; n <= 6; n++ {
		b.Run(fmt.Sprintf("tables=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := h.RunNaiveBlowup(n, n, 2_000_000)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				if r.NaiveDNF {
					b.ReportMetric(-1, "naive-ms")
				} else {
					b.ReportMetric(r.NaiveMS, "naive-ms")
				}
				b.ReportMetric(r.TwoPhaseMS, "twophase-ms")
			}
		})
	}
}

// BenchmarkPlannerOnly measures pure optimization latency per mode over the
// analyzed suite (the paper's "planner latency (ms)" columns).
func BenchmarkPlannerOnly(b *testing.B) {
	h := newHarness(b, false)
	ds := h.Dataset()
	for _, mode := range []optimizer.Mode{optimizer.NoBF, optimizer.BFPost, optimizer.BFCBO} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, num := range tpch.Analyzed() {
					q, _ := tpch.Get(num)
					opts := optimizer.DefaultOptions(benchSF)
					opts.Mode = mode
					if _, err := optimizer.Optimize(q.Build(ds.Schema), opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkStreamingStrategies exercises the §3.9 Bloom filter build
// strategies through queries whose plans use them (BC -> single filter,
// RD -> partitioned filters, BC-probe -> merged filters).
func BenchmarkStreamingStrategies(b *testing.B) {
	h := newHarness(b, false)
	for i := 0; i < b.N; i++ {
		qr, err := h.RunQuery(12, optimizer.BFCBO)
		if err != nil {
			b.Fatal(err)
		}
		if len(qr.Actuals.BloomStats) == 0 {
			b.Fatal("no bloom stats")
		}
	}
}

// BenchmarkHeuristicAblation measures the ablation suite (one pass per
// heuristic variant) on a query subset to keep runtime bounded.
func BenchmarkHeuristicAblation(b *testing.B) {
	h := newHarness(b, false)
	for i := 0; i < b.N; i++ {
		if _, err := h.RunAblation([]int{3, 7, 12}); err != nil {
			b.Fatal(err)
		}
	}
}
